package main

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/report"
	"repro/internal/workload"
)

// Latency thresholds from §3.5.1: response time becomes noticeable at 60 ms
// and the game unplayable at 118 ms.
const (
	noticeableMS = 60.0
	unplayableMS = 118.0
)

// fig1 reproduces Figure 1: Minecraft (Vanilla) response time on the AWS
// cloud under the Control and Resource Farms workloads, one idle player.
func fig1(c *ctx) (string, error) {
	var b strings.Builder
	var rows [][]string
	maxScale := 0.0
	sums := map[string]metrics.Summary{}
	for _, k := range fig1Kinds {
		s := metrics.Summarize(c.pooledResponses(server.Vanilla, k, env.AWSLarge))
		sums[k.String()] = s
		if s.P95 > maxScale {
			maxScale = s.P95
		}
		rows = append(rows, []string{k.String(),
			report.F(s.P5), report.F(s.P25), report.F(s.Median), report.F(s.P75),
			report.F(s.P95), report.F(s.Mean), report.F(s.Max)})
	}
	for _, k := range []string{"Control", "Farm"} {
		b.WriteString(report.BoxRow(k, sums[k], maxScale*1.1, 60) + "\n")
	}
	fmt.Fprintf(&b, "thresholds: NoticeableDelay=%v ms, UnplayableGame=%v ms\n", noticeableMS, unplayableMS)
	b.WriteString(report.Table(
		[]string{"workload", "p5", "p25", "median", "p75", "p95", "mean", "max"}, rows))
	err := report.WriteCSV(filepath.Join(c.out, "fig1.csv"),
		[]string{"workload", "p5_ms", "p25_ms", "median_ms", "p75_ms", "p95_ms", "mean_ms", "max_ms"}, rows)
	return b.String(), err
}

// fig6 reproduces Figure 6: the analytic ISR model ISR = (s-1)/(s+λ-1) for
// s ∈ {2, 10, 20} (6a) and the order-sensitivity example traces (6b).
func fig6(c *ctx) (string, error) {
	var rows [][]string
	for lambda := 1; lambda <= 100; lambda++ {
		rows = append(rows, []string{
			fmt.Sprint(lambda),
			report.F(metrics.ISRModel(2, float64(lambda))),
			report.F(metrics.ISRModel(10, float64(lambda))),
			report.F(metrics.ISRModel(20, float64(lambda))),
		})
	}
	if err := report.WriteCSV(filepath.Join(c.out, "fig6a.csv"),
		[]string{"lambda", "isr_s2", "isr_s10", "isr_s20"}, rows); err != nil {
		return "", err
	}

	// Figure 6b: 1000 ticks, five outliers at s=20 — front-loaded vs spread.
	const total, outliers, s, bMS = 1000, 5, 20.0, 50.0
	ne := int(((total - outliers) + outliers*s) * bMS / bMS)
	low := metrics.ISR(metrics.FrontLoadedOutlierTrace(total, outliers, s, bMS), bMS, ne)
	high := metrics.ISR(metrics.SpreadOutlierTrace(total, outliers, s, bMS), bMS, ne)
	if err := report.WriteCSV(filepath.Join(c.out, "fig6b.csv"),
		[]string{"trace", "isr"}, [][]string{
			{"low_isr_front_loaded", report.F(low)},
			{"high_isr_spread", report.F(high)},
		}); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("ISR(s,λ) = (s-1)/(s+λ-1); sampled:\n")
	for _, lambda := range []float64{2, 10, 25, 50, 100} {
		fmt.Fprintf(&b, "  λ=%3.0f  s=2: %s  s=10: %s  s=20: %s\n", lambda,
			report.F(metrics.ISRModel(2, lambda)),
			report.F(metrics.ISRModel(10, lambda)),
			report.F(metrics.ISRModel(20, lambda)))
	}
	fmt.Fprintf(&b, "paper check: ISR(10,25) = %s (paper: 0.26)\n", report.F(metrics.ISRModel(10, 25)))
	fmt.Fprintf(&b, "fig6b: front-loaded ISR=%s, spread ISR=%s (order of magnitude apart)\n",
		report.F(low), report.F(high))
	return b.String(), nil
}

// fig7 reproduces Figure 7 / MF1: response-time distributions of Minecraft
// and Forge under Control, Farm and TNT on AWS. PaperMC is omitted exactly
// as in the paper: its asynchronous chat thread bypasses the game tick, so
// the chat probe does not measure tick latency.
func fig7(c *ctx) (string, error) {
	type row struct {
		label string
		sum   metrics.Summary
	}
	var rowsOut []row
	var csvRows [][]string
	for _, k := range fig7Kinds {
		for _, f := range fig7Flavors {
			s := metrics.Summarize(c.pooledResponses(f, k, env.AWSLarge))
			label := fmt.Sprintf("%s/%s", k, f.Name)
			rowsOut = append(rowsOut, row{label, s})
			csvRows = append(csvRows, []string{k.String(), f.Name,
				report.F(s.P5), report.F(s.P25), report.F(s.Median), report.F(s.P75),
				report.F(s.P95), report.F(s.Mean), report.F(s.Max),
				report.F(s.Max / s.Mean), report.F(s.Max / unplayableMS)})
		}
	}
	var b strings.Builder
	scale := 0.0
	for _, r := range rowsOut {
		if r.sum.P95 > scale {
			scale = r.sum.P95
		}
	}
	for _, r := range rowsOut {
		b.WriteString(report.BoxRow(r.label, r.sum, scale*1.1, 60) + "\n")
	}
	fmt.Fprintf(&b, "thresholds: noticeable=%v ms, unplayable=%v ms (PaperMC omitted: async chat)\n",
		noticeableMS, unplayableMS)
	b.WriteString(report.Table([]string{"workload", "MLG", "p5", "p25", "med", "p75", "p95", "mean", "max", "max/mean", "max/unplayable"}, csvRows))
	err := report.WriteCSV(filepath.Join(c.out, "fig7.csv"),
		[]string{"workload", "mlg", "p5_ms", "p25_ms", "median_ms", "p75_ms", "p95_ms", "mean_ms", "max_ms", "max_over_mean", "max_over_unplayable"}, csvRows)
	return b.String(), err
}

// fig8 reproduces Figure 8 / MF2: ISR for each MLG under each workload on
// AWS 2-core, DAS-5 2-core and DAS-5 16-core. The Lag workload crashes
// every MLG on AWS, as in the paper.
func fig8(c *ctx) (string, error) {
	envs, kinds := fig8Envs, fig8Kinds
	var b strings.Builder
	var csvRows [][]string
	for _, p := range envs {
		fmt.Fprintf(&b, "%s:\n", p.Name)
		for _, k := range kinds {
			line := fmt.Sprintf("  %-8s", k)
			for _, f := range server.Flavors() {
				r := c.run(f, k, p, 0)
				if r.Crashed {
					line += fmt.Sprintf("  %s=CRASH", f.Name)
					csvRows = append(csvRows, []string{p.Name, k.String(), f.Name, "", "true"})
				} else {
					line += fmt.Sprintf("  %s=%s", f.Name, report.F(r.ISR))
					csvRows = append(csvRows, []string{p.Name, k.String(), f.Name, report.F(r.ISR), "false"})
				}
			}
			b.WriteString(line + "\n")
		}
	}
	err := report.WriteCSV(filepath.Join(c.out, "fig8.csv"),
		[]string{"environment", "workload", "mlg", "isr", "crashed"}, csvRows)
	return b.String(), err
}

// fig9 reproduces Figure 9: tick time over time for each MLG on AWS under
// Control, Farm, TNT and Players. (Lag is omitted on AWS because every MLG
// crashes, as in the paper.)
func fig9(c *ctx) (string, error) {
	kinds := fig9Kinds
	var b strings.Builder
	for _, k := range kinds {
		var csvRows [][]string
		fmt.Fprintf(&b, "%s:\n", k)
		for _, f := range server.Flavors() {
			r := c.run(f, k, env.AWSLarge, 0)
			for _, pt := range r.Series {
				csvRows = append(csvRows, []string{f.Name,
					report.F(pt.AtMS), report.F(pt.DurMS)})
			}
			// Time-bucketed resampling (max per bucket) so the sparkline's
			// x axis is wall time, like the paper's plot.
			const buckets = 72
			durs := make([]float64, buckets)
			span := c.duration.Seconds() * 1000
			peak := 0.0
			for _, pt := range r.Series {
				idx := int(pt.AtMS / span * buckets)
				if idx >= buckets {
					idx = buckets - 1
				}
				if pt.DurMS > durs[idx] {
					durs[idx] = pt.DurMS
				}
				if pt.DurMS > peak {
					peak = pt.DurMS
				}
			}
			fmt.Fprintf(&b, "  %-10s %s  peak=%s ms\n", f.Name, report.Sparkline(durs, buckets), report.F(peak))
		}
		if err := report.WriteCSV(
			filepath.Join(c.out, fmt.Sprintf("fig9_%s.csv", strings.ToLower(k.String()))),
			[]string{"mlg", "t_ms", "tick_ms"}, csvRows); err != nil {
			return "", err
		}
	}
	b.WriteString("overloaded threshold: 50 ms; Lag on AWS omitted (all MLGs crash)\n")
	return b.String(), nil
}

// fig10 reproduces Figure 10 / MF3: distributions of tick time and ISR over
// many iterations of the Players workload on DAS-5, Azure and AWS.
func fig10(c *ctx) (string, error) {
	envs := fig10Envs
	var b strings.Builder
	var csvRows [][]string
	type agg struct {
		label      string
		isr, ticks metrics.Summary
	}
	var aggs []agg
	for _, p := range envs {
		for _, f := range server.Flavors() {
			var isrs, tickMeans []float64
			for it := 0; it < c.fig10Iters; it++ {
				r := c.run(f, workload.Players, p, it)
				isrs = append(isrs, r.ISR)
				tickMeans = append(tickMeans, r.TickSummary.Mean)
				csvRows = append(csvRows, []string{p.Name, f.Name, fmt.Sprint(it),
					report.F(r.ISR), report.F(r.TickSummary.Mean), report.F(r.TickSummary.Median)})
			}
			aggs = append(aggs, agg{
				label: fmt.Sprintf("%s/%s", p.Name, f.Name),
				isr:   metrics.Summarize(isrs),
				ticks: metrics.Summarize(tickMeans),
			})
		}
	}
	var isrScale, tickScale float64
	for _, a := range aggs {
		if a.isr.P95 > isrScale {
			isrScale = a.isr.P95
		}
		if a.ticks.P95 > tickScale {
			tickScale = a.ticks.P95
		}
	}
	b.WriteString("ISR distribution across iterations:\n")
	for _, a := range aggs {
		b.WriteString(report.BoxRow(a.label, a.isr, isrScale*1.1, 50) + "\n")
	}
	b.WriteString("\nmean tick time [ms] distribution across iterations:\n")
	for _, a := range aggs {
		b.WriteString(report.BoxRow(a.label, a.ticks, tickScale*1.1, 50) + "\n")
	}
	var isrRows [][]string
	for _, a := range aggs {
		isrRows = append(isrRows, []string{a.label,
			report.F(a.isr.Median), report.F(a.isr.IQR), report.F(a.isr.Min), report.F(a.isr.Max),
			report.F(a.ticks.Median), report.F(a.ticks.IQR)})
	}
	b.WriteString("\n" + report.Table([]string{"env/MLG", "ISRmed", "ISRiqr", "ISRmin", "ISRmax", "tickMed", "tickIQR"}, isrRows))
	err := report.WriteCSV(filepath.Join(c.out, "fig10.csv"),
		[]string{"environment", "mlg", "iteration", "isr", "tick_mean_ms", "tick_median_ms"}, csvRows)
	return b.String(), err
}

// fig11 reproduces Figure 11 / MF4: the share of tick time attributed to
// each operation category on AWS.
func fig11(c *ctx) (string, error) {
	kinds := fig11Kinds
	glyphs := []rune{'A', 'U', 'E', 'b', 'a', 'o'} // add/rm, update, entities, waitBefore, waitAfter, other
	var b strings.Builder
	b.WriteString("legend: A=block add/remove U=block update E=entities b=wait-before a=wait-after o=other\n")
	var csvRows [][]string
	for _, k := range kinds {
		fmt.Fprintf(&b, "%s:\n", k)
		for _, f := range server.Flavors() {
			r := c.run(f, k, env.AWSLarge, 0)
			d := r.Fig11
			total := d.PlayerUS + d.BlockUpdateUS + d.BlockAddRemoveUS + d.EntityUS +
				d.OtherUS + d.WaitBeforeUS + d.WaitAfterUS
			if total <= 0 {
				continue
			}
			shares := []float64{
				d.BlockAddRemoveUS / total,
				d.BlockUpdateUS / total,
				d.EntityUS / total,
				d.WaitBeforeUS / total,
				d.WaitAfterUS / total,
				(d.OtherUS + d.PlayerUS) / total,
			}
			b.WriteString("  " + report.StackedRow(f.Name, shares, glyphs, 70) + "\n")
			// Entity share of non-wait time (the MF4 statement).
			busy := total - d.WaitBeforeUS - d.WaitAfterUS
			entityOfBusy := 0.0
			if busy > 0 {
				entityOfBusy = d.EntityUS / busy
			}
			csvRows = append(csvRows, []string{k.String(), f.Name,
				report.F(shares[0] * 100), report.F(shares[1] * 100), report.F(shares[2] * 100),
				report.F(shares[3] * 100), report.F(shares[4] * 100), report.F(shares[5] * 100),
				report.F(entityOfBusy * 100), report.F(d.EntityUS / 1000),
				report.F((d.BlockUpdateUS + d.BlockAddRemoveUS) / 1000)})
		}
	}
	b.WriteString(report.Table([]string{"workload", "MLG", "addrm%", "update%", "entities%", "waitB%", "waitA%", "other%", "entity% of busy", "entity ms", "terrain ms"}, csvRows))
	err := report.WriteCSV(filepath.Join(c.out, "fig11.csv"),
		[]string{"workload", "mlg", "block_addrm_pct", "block_update_pct", "entities_pct",
			"wait_before_pct", "wait_after_pct", "other_pct", "entity_pct_of_busy",
			"entity_ms_abs", "terrain_ms_abs"}, csvRows)
	return b.String(), err
}

// fig12 reproduces Figure 12 / MF5: tick-time distribution and ISR for the
// TNT workload across AWS node sizes L, XL and 2XL.
func fig12(c *ctx) (string, error) {
	var b strings.Builder
	var csvRows [][]string
	sizeName := map[string]string{
		env.AWSLarge.Name: "L", env.AWSXLarge.Name: "XL", env.AWS2XLarge.Name: "2XL",
	}
	var boxes []struct {
		label string
		sum   metrics.Summary
		isr   float64
	}
	for _, p := range env.NodeSizes() {
		for _, f := range server.Flavors() {
			r := c.run(f, workload.TNT, p, 0)
			boxes = append(boxes, struct {
				label string
				sum   metrics.Summary
				isr   float64
			}{fmt.Sprintf("%s/%s", sizeName[p.Name], f.Name), r.TickSummary, r.ISR})
			csvRows = append(csvRows, []string{sizeName[p.Name], f.Name,
				report.F(r.TickSummary.Mean), report.F(r.TickSummary.Median),
				report.F(r.TickSummary.P75), report.F(r.TickSummary.P95),
				report.F(r.TickSummary.Max), report.F(r.ISR)})
		}
	}
	scale := 0.0
	for _, bx := range boxes {
		if bx.sum.P95 > scale {
			scale = bx.sum.P95
		}
	}
	for _, bx := range boxes {
		b.WriteString(report.BoxRow(bx.label, bx.sum, scale*1.1, 50) +
			fmt.Sprintf("  ISR=%s\n", report.F(bx.isr)))
	}
	b.WriteString("overloaded threshold: 50 ms\n")
	b.WriteString(report.Table([]string{"node", "MLG", "mean", "median", "p75", "p95", "max", "ISR"}, csvRows))
	err := report.WriteCSV(filepath.Join(c.out, "fig12.csv"),
		[]string{"node_size", "mlg", "tick_mean_ms", "tick_median_ms", "tick_p75_ms",
			"tick_p95_ms", "tick_max_ms", "isr"}, csvRows)
	return b.String(), err
}
