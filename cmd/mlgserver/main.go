// Command mlgserver runs a standalone MLG game server over real TCP: the
// system under test as an ordinary network service. Connect Yardstick-style
// bots with cmd/botswarm, or any client speaking the wire protocol.
//
// Usage:
//
//	mlgserver [-addr :25565] [-flavor Minecraft] [-world Control] [-seed N]
//	          [-save-dir DIR] [-snapshot-every N] [-snapshot-full-every N]
//
// The server runs in wall-clock mode: tick durations are measured, not
// modelled, so this binary also serves as the real-hardware baseline for
// comparing the virtual-time engine against actual execution.
//
// With -save-dir the server becomes crash-safe: it snapshots the complete
// world/sim/entity/player state every -snapshot-every ticks (atomic
// write-to-temp + fsync + rename, checksummed, full snapshots interleaved
// with incrementals), restores the newest good snapshot on start — falling
// back past torn or corrupt files — and flushes a final snapshot on
// SIGINT/SIGTERM after the tick loop drains.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":25565", "listen address")
		flavorName = flag.String("flavor", "Minecraft", "MLG flavor: Minecraft, Forge, PaperMC")
		worldName  = flag.String("world", "Control", "workload world: Control, Farm, TNT, Lag, Players")
		seed       = flag.Int64("seed", world.PaperControlSeed, "world seed")
		saveDir    = flag.String("save-dir", "", "snapshot directory (empty = persistence off)")
		snapEvery  = flag.Int("snapshot-every", 200, "snapshot cadence in ticks (with -save-dir)")
		snapFull   = flag.Int("snapshot-full-every", 10, "every Nth snapshot is full, the rest incremental")

		shardSpec  = flag.String("shard", "", "run as shard i/N of a chunk-split world, e.g. 0/2 (needs -splits, -shard-addr, -shard-peers)")
		gatewayFlg = flag.Bool("gateway", false, "run as a player gateway routing to shard processes (needs -splits, -shards)")
		splitsFlag = flag.String("splits", "", "ascending chunk-X split points, comma-separated (N-1 entries for N shards)")
		shardAddr  = flag.String("shard-addr", "", "this shard's inter-shard session listen address")
		shardPeers = flag.String("shard-peers", "", "session addresses of all shards, comma-separated and index-aligned")
		shardsFlag = flag.String("shards", "", "player addresses of all shards, comma-separated (gateway mode)")
	)
	flag.Parse()

	if *gatewayFlg {
		runGateway(*addr, *splitsFlag, *shardsFlag)
		return
	}

	flavor, err := server.FlavorByName(*flavorName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := workload.ByName(*worldName)
	if err != nil {
		log.Fatal(err)
	}

	w := workload.NewWorld(kind, *seed)
	cfg := server.DefaultConfig(flavor)

	// Shard mode: this process owns one chunk range of a split world and
	// exchanges halo mirrors + entity handoffs with its peers after every
	// tick, in lockstep over TCP sessions.
	var (
		shardIdx, shardN int
		smap             shard.Map
	)
	if *shardSpec != "" {
		if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &shardIdx, &shardN); err != nil || shardIdx < 0 || shardIdx >= shardN {
			log.Fatalf("bad -shard %q, want i/N", *shardSpec)
		}
		splits, err := parseSplits(*splitsFlag)
		if err != nil {
			log.Fatal(err)
		}
		smap = shard.Map{Splits: splits}
		if err := smap.Validate(); err != nil {
			log.Fatal(err)
		}
		if smap.Count() != shardN {
			log.Fatalf("-splits %q describes %d shards, -shard says %d", *splitsFlag, smap.Count(), shardN)
		}
		cfg.Shard = server.ShardConfig{Count: shardN, Index: shardIdx, Owns: smap.Owns(shardIdx)}
	}

	// With a save directory the server owns a snapshotter (Config.Persist):
	// it snapshots at the tick tail on the configured cadence, and the
	// after-tick hook surfaces write failures.
	var st *persist.Store
	if *saveDir != "" {
		var err error
		if st, err = persist.NewStore(*saveDir); err != nil {
			log.Fatal(err)
		}
		cfg.Persist = server.PersistConfig{Store: st, Every: *snapEvery, FullEvery: *snapFull}
	}
	var s *server.Server
	var ep *shard.Endpoint
	cfg.Hooks.AfterTick = func(rec server.TickRecord) {
		if ep != nil {
			if err := ep.Exchange(rec.Tick); err != nil {
				log.Printf("shard exchange: %v", err)
				s.Stop()
			}
		}
		if st != nil {
			if err := s.Snapshotter().Err(); err != nil {
				log.Printf("snapshot: %v", err)
			}
		}
	}
	s = server.New(w, cfg, nil, env.RealClock{}) // wall-clock mode

	// Restore the newest good snapshot instead of installing the workload
	// from scratch; the store skips torn or corrupt files and falls back to
	// the last one whose checksums verify.
	restored := false
	if st != nil {
		switch res, err := st.LoadLatest(); {
		case err == nil:
			for _, skip := range res.Skipped {
				log.Printf("skipping damaged snapshot %s", skip)
			}
			if err := s.RestoreSnapshot(res); err != nil {
				log.Fatalf("restore %s: %v", res.Path, err)
			}
			log.Printf("restored tick %d from %s", res.Tick, res.Path)
			restored = true
		case errors.Is(err, persist.ErrNoSnapshot):
			log.Printf("no snapshot in %s, starting fresh", *saveDir)
		default:
			log.Fatal(err)
		}
	}
	if !restored {
		if err := workload.Install(s, kind.DefaultSpec()); err != nil {
			log.Fatal(err)
		}
		workload.Arm(s, kind.DefaultSpec())
	}

	// Link the inter-shard mesh before the tick loop starts: every shard
	// blocks here until all its peers are up, so tick 1 already runs in
	// lockstep.
	if *shardSpec != "" {
		ep = shard.NewEndpoint(s, smap, shardIdx)
		sln, err := net.Listen("tcp", *shardAddr)
		if err != nil {
			log.Fatal(err)
		}
		peers := strings.Split(*shardPeers, ",")
		if err := shard.ConnectMesh(ep, sln, peers, 60*time.Second); err != nil {
			log.Fatal(err)
		}
		log.Printf("shard %d/%d linked (splits %v)", shardIdx, shardN, smap.Splits)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s serving %s world on %s", flavor.Name, kind, ln.Addr())

	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("serve: %v", err)
		}
	}()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		s.Run()
	}()

	// Periodic operational stats via the metric externalizer.
	ex := telemetry.NewExternalizer(s)
	go func() {
		for {
			time.Sleep(10 * time.Second)
			trace := ex.TickTraceMS()
			if len(trace) < 200 {
				continue
			}
			sum := metrics.Summarize(trace[len(trace)-200:])
			log.Printf("players=%d ticks=%d mean=%.1fms p95=%.1fms overloaded=%d",
				s.PlayerCount(), len(trace), sum.Mean, sum.P95, ex.OverloadedTicks())
		}
	}()

	// Graceful shutdown: stop accepting, let the in-flight tick finish (Run
	// returns only between ticks), then flush one final snapshot so a
	// restart resumes exactly where the process left off.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	s.Stop()
	<-runDone
	if sn := s.Snapshotter(); sn != nil {
		sn.Snapshot()
		sn.Close()
		if err := sn.Err(); err != nil {
			log.Printf("final snapshot: %v", err)
		} else if p := st.LatestPath(); p != "" {
			log.Printf("final snapshot written: %s", p)
		}
	}
	ln.Close()
}

// runGateway serves the -gateway mode: a pure player-routing proxy in
// front of already-running shard processes.
func runGateway(addr, splitsFlag, shardsFlag string) {
	splits, err := parseSplits(splitsFlag)
	if err != nil {
		log.Fatal(err)
	}
	m := shard.Map{Splits: splits}
	addrs := strings.Split(shardsFlag, ",")
	gw, err := shard.NewGateway(shard.GatewayConfig{
		Map:   m,
		Addrs: addrs,
		OnShardDown: func(i int) {
			log.Printf("shard %d down; retrying until a standby answers on %s", i, addrs[i])
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("gateway on %s routing %d shards (splits %v)", ln.Addr(), m.Count(), m.Splits)
	if err := gw.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

// parseSplits parses the -splits flag: ascending chunk-X boundaries.
func parseSplits(s string) ([]int32, error) {
	if s == "" {
		return nil, nil
	}
	var out []int32
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad -splits entry %q: %v", part, err)
		}
		out = append(out, int32(v))
	}
	return out, nil
}
