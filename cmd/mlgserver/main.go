// Command mlgserver runs a standalone MLG game server over real TCP: the
// system under test as an ordinary network service. Connect Yardstick-style
// bots with cmd/botswarm, or any client speaking the wire protocol.
//
// Usage:
//
//	mlgserver [-addr :25565] [-flavor Minecraft] [-world Control] [-seed N]
//	          [-save-dir DIR] [-snapshot-every N] [-snapshot-full-every N]
//
// The server runs in wall-clock mode: tick durations are measured, not
// modelled, so this binary also serves as the real-hardware baseline for
// comparing the virtual-time engine against actual execution.
//
// With -save-dir the server becomes crash-safe: it snapshots the complete
// world/sim/entity/player state every -snapshot-every ticks (atomic
// write-to-temp + fsync + rename, checksummed, full snapshots interleaved
// with incrementals), restores the newest good snapshot on start — falling
// back past torn or corrupt files — and flushes a final snapshot on
// SIGINT/SIGTERM after the tick loop drains.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/persist"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":25565", "listen address")
		flavorName = flag.String("flavor", "Minecraft", "MLG flavor: Minecraft, Forge, PaperMC")
		worldName  = flag.String("world", "Control", "workload world: Control, Farm, TNT, Lag, Players")
		seed       = flag.Int64("seed", world.PaperControlSeed, "world seed")
		saveDir    = flag.String("save-dir", "", "snapshot directory (empty = persistence off)")
		snapEvery  = flag.Int("snapshot-every", 200, "snapshot cadence in ticks (with -save-dir)")
		snapFull   = flag.Int("snapshot-full-every", 10, "every Nth snapshot is full, the rest incremental")
	)
	flag.Parse()

	flavor, err := server.FlavorByName(*flavorName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := workload.ByName(*worldName)
	if err != nil {
		log.Fatal(err)
	}

	w := workload.NewWorld(kind, *seed)
	cfg := server.DefaultConfig(flavor)
	s := server.New(w, cfg, nil, env.RealClock{}) // wall-clock mode

	// With a save directory, restore the newest good snapshot instead of
	// installing the workload from scratch; the store skips torn or corrupt
	// files and falls back to the last one whose checksums verify.
	var st *persist.Store
	restored := false
	if *saveDir != "" {
		var err error
		if st, err = persist.NewStore(*saveDir); err != nil {
			log.Fatal(err)
		}
		switch res, err := st.LoadLatest(); {
		case err == nil:
			for _, skip := range res.Skipped {
				log.Printf("skipping damaged snapshot %s", skip)
			}
			if err := s.RestoreSnapshot(res); err != nil {
				log.Fatalf("restore %s: %v", res.Path, err)
			}
			log.Printf("restored tick %d from %s", res.Tick, res.Path)
			restored = true
		case errors.Is(err, persist.ErrNoSnapshot):
			log.Printf("no snapshot in %s, starting fresh", *saveDir)
		default:
			log.Fatal(err)
		}
	}
	if !restored {
		if err := workload.Install(s, kind.DefaultSpec()); err != nil {
			log.Fatal(err)
		}
		workload.Arm(s, kind.DefaultSpec())
	}

	var sn *server.Snapshotter
	if st != nil {
		sn = server.NewSnapshotter(s, st, server.SnapshotterConfig{
			Every: *snapEvery, FullEvery: *snapFull,
		})
		s.OnAfterTick(func(rec server.TickRecord) {
			sn.MaybeSnapshot(rec.Tick)
			if err := sn.Err(); err != nil {
				log.Printf("snapshot: %v", err)
			}
		})
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s serving %s world on %s", flavor.Name, kind, ln.Addr())

	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("serve: %v", err)
		}
	}()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		s.Run()
	}()

	// Periodic operational stats via the metric externalizer.
	ex := telemetry.NewExternalizer(s)
	go func() {
		for {
			time.Sleep(10 * time.Second)
			trace := ex.TickTraceMS()
			if len(trace) < 200 {
				continue
			}
			sum := metrics.Summarize(trace[len(trace)-200:])
			log.Printf("players=%d ticks=%d mean=%.1fms p95=%.1fms overloaded=%d",
				s.PlayerCount(), len(trace), sum.Mean, sum.P95, ex.OverloadedTicks())
		}
	}()

	// Graceful shutdown: stop accepting, let the in-flight tick finish (Run
	// returns only between ticks), then flush one final snapshot so a
	// restart resumes exactly where the process left off.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	s.Stop()
	<-runDone
	if sn != nil {
		sn.Snapshot()
		sn.Close()
		if err := sn.Err(); err != nil {
			log.Printf("final snapshot: %v", err)
		} else if p := st.LatestPath(); p != "" {
			log.Printf("final snapshot written: %s", p)
		}
	}
	ln.Close()
}
