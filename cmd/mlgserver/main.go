// Command mlgserver runs a standalone MLG game server over real TCP: the
// system under test as an ordinary network service. Connect Yardstick-style
// bots with cmd/botswarm, or any client speaking the wire protocol.
//
// Usage:
//
//	mlgserver [-addr :25565] [-flavor Minecraft] [-world Control] [-seed N]
//
// The server runs in wall-clock mode: tick durations are measured, not
// modelled, so this binary also serves as the real-hardware baseline for
// comparing the virtual-time engine against actual execution.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/mlg/server"
	"repro/internal/mlg/world"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":25565", "listen address")
		flavorName = flag.String("flavor", "Minecraft", "MLG flavor: Minecraft, Forge, PaperMC")
		worldName  = flag.String("world", "Control", "workload world: Control, Farm, TNT, Lag, Players")
		seed       = flag.Int64("seed", world.PaperControlSeed, "world seed")
	)
	flag.Parse()

	flavor, err := server.FlavorByName(*flavorName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := workload.ByName(*worldName)
	if err != nil {
		log.Fatal(err)
	}

	w := workload.NewWorld(kind, *seed)
	cfg := server.DefaultConfig(flavor)
	s := server.New(w, cfg, nil, env.RealClock{}) // wall-clock mode
	if err := workload.Install(s, kind.DefaultSpec()); err != nil {
		log.Fatal(err)
	}
	workload.Arm(s, kind.DefaultSpec())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s serving %s world on %s", flavor.Name, kind, ln.Addr())

	go func() {
		if err := s.Serve(ln); err != nil {
			log.Printf("serve: %v", err)
		}
	}()
	go s.Run()

	// Periodic operational stats via the metric externalizer.
	ex := telemetry.NewExternalizer(s)
	go func() {
		for {
			time.Sleep(10 * time.Second)
			trace := ex.TickTraceMS()
			if len(trace) < 200 {
				continue
			}
			sum := metrics.Summarize(trace[len(trace)-200:])
			log.Printf("players=%d ticks=%d mean=%.1fms p95=%.1fms overloaded=%d",
				s.PlayerCount(), len(trace), sum.Mean, sum.P95, ex.OverloadedTicks())
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	s.Stop()
	ln.Close()
}
