// Command meterstick runs the Meterstick benchmark: it evaluates the
// performance variability of one or more MLG flavors under a chosen
// workload and deployment environment, over one or more iterations, and
// reports the Table 5 metrics including the Instability Ratio.
//
// Usage:
//
//	meterstick [-servers Minecraft,Forge,PaperMC] [-world Control]
//	           [-env DAS5-2core] [-bots 25] [-behavior bounded-random]
//	           [-duration 60s] [-iterations 1] [-scale 1] [-out results]
//	           [-parallel N]
//
// The run executes on the virtual-time engine, so a 60-second iteration
// completes in a fraction of wall time and is fully reproducible.
// -parallel drains the (server, iteration) grid across N workers
// (default GOMAXPROCS; 1 executes serially); every run is hermetic, so
// results are identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	var servers, behavior string
	flag.StringVar(&servers, "servers", "Minecraft,Forge,PaperMC", "comma-separated MLG flavors to benchmark")
	flag.StringVar(&cfg.World, "world", cfg.World, "workload world: Control, Farm, TNT, Lag, Players")
	flag.StringVar(&cfg.Environment, "env", cfg.Environment, "deployment environment profile (see -list-envs)")
	flag.IntVar(&cfg.NumberOfBots, "bots", cfg.NumberOfBots, "number of emulated players")
	flag.StringVar(&behavior, "behavior", "bounded-random", "player behaviour: idle or bounded-random")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "iteration length")
	flag.IntVar(&cfg.Iterations, "iterations", cfg.Iterations, "iteration count")
	flag.IntVar(&cfg.Scale, "scale", cfg.Scale, "workload intensity multiplier")
	flag.StringVar(&cfg.OutputDir, "out", cfg.OutputDir, "output directory for per-run CSVs")
	parallel := flag.Int("parallel", 0, "run scheduler workers (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&cfg.SimWorkers, "simworkers", cfg.SimWorkers,
		"simulation workers per server, shared by the terrain drains and the entity tick (0 = GOMAXPROCS, 1 = legacy serial; output is identical at any value)")
	listEnvs := flag.Bool("list-envs", false, "list environment profiles and exit")
	flag.Parse()

	if *listEnvs {
		for name, p := range env.StandardProfiles() {
			fmt.Printf("%-16s %d vCPU, provider %s\n", name, p.VCPUs, p.Provider)
		}
		return
	}

	cfg.Servers = strings.Split(servers, ",")
	if behavior == "idle" {
		cfg.Behavior = "idle"
	} else {
		cfg.Behavior = "bounded random"
	}

	specs, err := cfg.Specs()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var rows [][]string
	for _, res := range core.RunParallel(specs, *parallel) {
		printRun(res, cfg.Duration)
		rows = append(rows, []string{
			res.Flavor, res.Workload, res.Environment, fmt.Sprint(res.Iteration),
			report.F(res.ISR), report.F(res.TickSummary.Mean), report.F(res.TickSummary.Median),
			report.F(res.TickSummary.P95), report.F(res.TickSummary.Max),
			report.F(res.ResponseSummary.Median), report.F(res.ResponseSummary.P95),
			fmt.Sprint(res.Overloaded), fmt.Sprint(res.Crashed),
		})
	}
	path := filepath.Join(cfg.OutputDir, "meterstick.csv")
	if err := report.WriteCSV(path,
		[]string{"mlg", "workload", "environment", "iteration", "isr",
			"tick_mean_ms", "tick_median_ms", "tick_p95_ms", "tick_max_ms",
			"response_median_ms", "response_p95_ms", "overloaded_ticks", "crashed"},
		rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("results written to %s\n", path)
}

func printRun(res core.RunResult, d time.Duration) {
	fmt.Printf("== %s / %s / %s (iteration %d) ==\n",
		res.Flavor, res.Workload, res.Environment, res.Iteration)
	if res.Crashed {
		fmt.Printf("  CRASHED: %s\n", res.CrashReason)
	}
	t := res.TickSummary
	fmt.Printf("  ISR %.4f | tick ms: mean %s median %s p95 %s max %s | overloaded %d/%d\n",
		res.ISR, report.F(t.Mean), report.F(t.Median), report.F(t.P95), report.F(t.Max),
		res.Overloaded, metrics.ExpectedTicks(d, 50*time.Millisecond))
	r := res.ResponseSummary
	if r.N > 0 {
		fmt.Printf("  response ms: median %s p95 %s max %s (%d probes)\n",
			report.F(r.Median), report.F(r.P95), report.F(r.Max), r.N)
	}
	fmt.Printf("  trace: %s\n", report.Sparkline(res.TickMS, 64))
}
