// Command botswarm runs Yardstick-style player emulation against a live MLG
// server over TCP: it connects a swarm of bots that walk randomly in a
// bounded area and probe game response time with self-addressed chat
// messages, then reports the response-time distribution.
//
// Usage:
//
//	botswarm [-addr 127.0.0.1:25565] [-bots 25] [-behavior bounded-random]
//	         [-duration 60s] [-probe 1s] [-area 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bot"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:25565", "server address")
		bots     = flag.Int("bots", 25, "number of emulated players")
		behavior = flag.String("behavior", "bounded-random", "idle or bounded-random")
		duration = flag.Duration("duration", 60*time.Second, "emulation length")
		probe    = flag.Duration("probe", time.Second, "chat-probe interval")
		area     = flag.Float64("area", 32, "random-walk square side in blocks")
		seed     = flag.Int64("seed", 1, "behaviour seed")
	)
	flag.Parse()

	beh := bot.RandomWalk
	if *behavior == "idle" {
		beh = bot.Idle
	}

	var clients []*bot.Client
	for i := 0; i < *bots; i++ {
		c, err := bot.Connect(*addr, bot.Config{
			Name:     fmt.Sprintf("bot-%02d", i),
			Behavior: beh,
			AreaSide: *area, BaseY: 30,
			ProbeEvery: *probe,
			Seed:       *seed + int64(i)*7919,
		})
		if err != nil {
			log.Fatalf("bot %d: %v", i, err)
		}
		defer c.Close()
		clients = append(clients, c)
		time.Sleep(100 * time.Millisecond) // ramp up, as Yardstick does
	}
	log.Printf("%d bots connected to %s; running %v", len(clients), *addr, *duration)
	time.Sleep(*duration)

	var rtts []float64
	for _, c := range clients {
		for _, p := range c.Probes() {
			rtts = append(rtts, float64(p.RTT)/float64(time.Millisecond))
		}
	}
	if len(rtts) == 0 {
		log.Print("no probes completed")
		os.Exit(1)
	}
	s := metrics.Summarize(rtts)
	fmt.Printf("response time over %d probes [ms]:\n", s.N)
	fmt.Printf("  p5=%s p25=%s median=%s p75=%s p95=%s mean=%s max=%s\n",
		report.F(s.P5), report.F(s.P25), report.F(s.Median), report.F(s.P75),
		report.F(s.P95), report.F(s.Mean), report.F(s.Max))
	fmt.Println(report.BoxRow("swarm RTT", s, s.P95*1.2, 60))
}
