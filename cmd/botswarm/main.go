// Command botswarm runs Yardstick-style player emulation over real TCP: it
// ramps a swarm of emulated players onto an MLG server, optionally injects
// peer faults — readers that stall mid-run, readers that drain slowly,
// connection churn — and reports the chat-probe response-time distribution.
// With -selfserve it hosts the server in-process on a loopback listener and
// additionally reports the server's tick tail (p99, ISR) and outbound fault
// counters (dropped batches, keyframes, write/idle disconnects).
//
// Usage:
//
//	botswarm [-addr 127.0.0.1:25565 | -selfserve] [-bots 25]
//	         [-behavior bounded-random] [-duration 60s] [-probe 1s]
//	         [-area 32] [-ramp-chunk 25] [-ramp-every 100ms] [-settle 1s]
//	         [-stall N] [-stall-after 1s] [-slow N] [-read-delay 20ms]
//	         [-churn-every 0] [-mobs 0] [-read-buffer 0] [-seed 1] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bot"
	"repro/internal/report"
	"repro/internal/swarm"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:25565", "server address")
		selfserve = flag.Bool("selfserve", false, "host the server in-process on a loopback listener (ignores -addr)")
		bots      = flag.Int("bots", 25, "number of emulated players")
		behavior  = flag.String("behavior", "bounded-random", "idle or bounded-random")
		duration  = flag.Duration("duration", 60*time.Second, "measured window after ramp + settle")
		probe     = flag.Duration("probe", time.Second, "chat-probe interval (0 disables)")
		area      = flag.Float64("area", 32, "random-walk square side in blocks")
		rampChunk = flag.Int("ramp-chunk", 25, "bots connected per ramp step")
		rampEvery = flag.Duration("ramp-every", 100*time.Millisecond, "pause between ramp steps")
		settle    = flag.Duration("settle", time.Second, "wait after ramp before the measured window")
		stall     = flag.Int("stall", 0, "bots that stop reading mid-run (dead-peer fault)")
		stallAt   = flag.Duration("stall-after", time.Second, "when stalled readers pause, into the window")
		slow      = flag.Int("slow", 0, "bots throttled to one read per -read-delay")
		readDelay = flag.Duration("read-delay", 20*time.Millisecond, "slow-reader read interval")
		churn     = flag.Duration("churn-every", 0, "reconnect one bot this often (0 disables)")
		mobs      = flag.Int("mobs", 0, "mob herd spawned before the run (selfserve only)")
		readBuf   = flag.Int("read-buffer", 0, "bot TCP receive buffer bytes (0 keeps OS default)")
		seed      = flag.Int64("seed", 1, "behaviour seed")
		jsonOut   = flag.Bool("json", false, "emit the full result as JSON instead of text")
	)
	flag.Parse()

	beh := bot.RandomWalk
	if *behavior == "idle" {
		beh = bot.Idle
	}

	cfg := swarm.Config{
		Addr:         *addr,
		Bots:         *bots,
		Behavior:     beh,
		ProbeEvery:   *probe,
		Area:         *area,
		RampChunk:    *rampChunk,
		RampEvery:    *rampEvery,
		Settle:       *settle,
		Duration:     *duration,
		StallReaders: *stall,
		StallAfter:   *stallAt,
		SlowReaders:  *slow,
		ReadDelay:    *readDelay,
		ChurnEvery:   *churn,
		Mobs:         *mobs,
		ReadBuffer:   *readBuf,
		Seed:         *seed,
	}
	if *selfserve {
		cfg.Addr = ""
	}

	log.Printf("swarm: %d bots, %v window (stall=%d slow=%d churn=%v)",
		cfg.Bots, cfg.Duration, cfg.StallReaders, cfg.SlowReaders, cfg.ChurnEvery)
	res, err := swarm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("connected %d/%d bots, %d dropped, elapsed %v\n",
		res.Connected, res.Bots, res.Dropped, res.Elapsed.Round(time.Millisecond))
	if res.Probes == 0 {
		fmt.Println("no probes completed")
	} else {
		s := res.RTTMS
		fmt.Printf("response time over %d probes [ms]:\n", s.N)
		fmt.Printf("  p5=%s p25=%s median=%s p75=%s p95=%s mean=%s max=%s\n",
			report.F(s.P5), report.F(s.P25), report.F(s.Median), report.F(s.P75),
			report.F(s.P95), report.F(s.Mean), report.F(s.Max))
		fmt.Println(report.BoxRow("swarm RTT", s, s.P95*1.2, 60))
	}
	if res.Ticks > 0 { // self-hosted: the server-side view exists too
		fmt.Printf("server: %d ticks, median=%sms p95=%sms p99=%sms isr=%.4f, %d players at end\n",
			res.Ticks, report.F(res.TickMS.Median), report.F(res.TickMS.P95),
			report.F(res.P99TickMS), res.ISR, res.FinalPlayers)
		fmt.Printf("outbound: dropped=%d keyframes=%d write-disconnects=%d idle-disconnects=%d\n",
			res.Outbound.DroppedBatches, res.Outbound.Keyframes,
			res.Outbound.WriteDisconnects, res.Outbound.IdleDisconnects)
	}
}
