#!/usr/bin/env bash
# bench.sh — run the tick + network benchmarks and record the perf
# trajectory into a JSON file (default BENCH_5.json): one entry per
# benchmark with name, ns/op and allocs/op. The set includes both
# region-parallel sweeps — BenchmarkTickParallel (whole server ticks,
# SimWorkers 1/2/4 over the scale>=2 construct workloads) and
# BenchmarkEntityTickParallel (store-level entity ticks, Workers 1/2/4 over
# multi-cluster populations) — so the serial-vs-parallel trajectories of
# both world-exclusive phases are recorded next to the per-workload serial
# baselines. Core-scaling only shows on hosts with >= 2 CPUs.
#
# BENCH_5.json is the committed baseline the CI perf gate diffs fresh runs
# against: scripts/bench_compare.sh fails the build on >25% calibrated
# ns/op or any allocs/op regression in the pinned benchmark set (see its
# header for the exact rules). Re-record it in the same change as any
# intentional perf shift — and ALWAYS with BENCHTIME=1x, the mode CI
# measures in: multi-iteration runs amortize setup allocations (e.g.
# BenchmarkSendReal reports ~99 allocs/op at 20x vs ~640 at 1x), so a
# 1s-recorded baseline makes the 1x alloc gate fail spuriously.
#
#   BENCHTIME=1x scripts/bench.sh BENCH_5.json   # re-record the gate baseline
#
# Usage:
#   scripts/bench.sh [out.json]       # local profiling (1s per benchmark)
#   BENCHTIME=1x scripts/bench.sh     # CI smoke: one iteration each
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
benchtime="${BENCHTIME:-1s}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkTick$|BenchmarkTickParallel$|BenchmarkEntityTickParallel$|BenchmarkSendReal$|BenchmarkSerializeChunk$' \
  -benchmem -benchtime "$benchtime" \
  ./internal/mlg/server ./internal/mlg/entity | tee "$raw"

awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
      if ($(i + 1) == "ns/op")     ns = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
    printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"cpus\": %s}", sep, name, ns, allocs, ncpu
    sep = ",\n"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
