#!/usr/bin/env bash
# bench.sh — run the tick + network benchmarks and record the perf
# trajectory into a JSON file (default BENCH_9.json): one entry per
# benchmark with name, ns/op, allocs/op and cpus. Three passes:
#
#   1. the full pinned set at -cpu 1 (GOMAXPROCS=1) — the serial per-
#      workload baselines the time gate protects, plus the workers sweeps
#      (BenchmarkTickParallel, BenchmarkEntityTickParallel) pinned single-
#      core so their alloc trajectories stay machine-independent;
#   2. the two region-parallel sweeps again at -cpu 2,4,8 — the multicore
#      scaling record for the worker schedulers;
#   3. BenchmarkSwarmTail at the host's full parallelism, always one
#      iteration — a real-TCP swarm run with an injected stalled reader.
#      Its ns/op is just the fixed wall budget of one run; the interesting
#      fields are the extra metrics it reports (p99-tick-ns, isr), recorded
#      as p99_tick_ns / isr in the JSON. Swarm entries are presence-pinned
#      but exempt from both perf gates (see bench_compare.sh).
#
# cpus is parsed from go test's -N GOMAXPROCS name suffix (absent at 1), so
# it records what the measurement actually ran under — NOT the host's
# physical core count. On a single-core host the 2/4/8 entries are
# time-sliced (no real scaling, and that is what gets recorded); real
# speedups only appear on runners with that many cores.
#
# BENCH_9.json extends the committed baselines the CI perf gate diffs fresh
# runs
# against: scripts/bench_compare.sh keys entries on (name, cpus) and fails
# the build on >25% calibrated ns/op or any allocs/op regression in the
# pinned set (see its header for the exact rules — cpus>1 entries are
# alloc-gated only, Swarm entries are presence-only). Re-record it in the
# same change as any intentional
# perf shift — and ALWAYS with BENCHTIME=1x, the mode CI measures in:
# multi-iteration runs amortize setup allocations (e.g. BenchmarkSendReal
# reports ~99 allocs/op at 20x vs ~640 at 1x), so a 1s-recorded baseline
# makes the 1x alloc gate fail spuriously.
#
#   BENCHTIME=1x scripts/bench.sh BENCH_9.json   # re-record the gate baseline
#
# Usage:
#   scripts/bench.sh [out.json]       # local profiling (1s per benchmark)
#   BENCHTIME=1x scripts/bench.sh     # CI smoke: one iteration each
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_9.json}"
benchtime="${BENCHTIME:-1s}"

full='BenchmarkTick$|BenchmarkTickParallel$|BenchmarkEntityTickParallel$|BenchmarkSendReal$|BenchmarkSerializeChunk$|BenchmarkSnapshotSave$|BenchmarkRestore$'
sweep='BenchmarkTickParallel$|BenchmarkEntityTickParallel$'

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$full" \
  -benchmem -benchtime "$benchtime" -cpu 1 \
  ./internal/mlg/server ./internal/mlg/entity | tee "$raw"

go test -run '^$' -bench "$sweep" \
  -benchmem -benchtime "$benchtime" -cpu 2,4,8 \
  ./internal/mlg/server ./internal/mlg/entity | tee -a "$raw"

# Shard handoff benchmark: the inter-shard entity migration path (departure
# sweep, packet codec round trip, arrival insert) — the hot cost a sharded
# deployment adds per boundary crossing. Pinned at -cpu 1 with the rest of
# the serial set; its entry extends the gate baseline in BENCH_10.json.
go test -run '^$' -bench 'BenchmarkShardHandoff$' \
  -benchmem -benchtime "$benchtime" -cpu 1 \
  ./internal/shard | tee -a "$raw"

# Swarm tail benchmark: always 1x — each iteration is a full multi-second
# real-TCP run, so -benchtime only multiplies wall clock, not resolution.
# Pinned to -cpu 4 so the recorded (name, cpus) key is host-independent:
# without it the benchmark name carries the host's GOMAXPROCS suffix and a
# baseline recorded on one core count would read as missing on another.
go test -run '^$' -bench 'BenchmarkSwarmTail$' \
  -benchmem -benchtime 1x -cpu 4 \
  ./internal/swarm | tee -a "$raw"

awk '
  /^Benchmark/ {
    name = $1; cpus = 1
    if (match(name, /-[0-9]+$/)) {       # go test suffixes -GOMAXPROCS when != 1
      cpus = substr(name, RSTART + 1)
      name = substr(name, 1, RSTART - 1)
    }
    ns = "null"; allocs = "null"; p99 = "null"; isr = "null"
    for (i = 2; i <= NF; i++) {
      if ($(i + 1) == "ns/op")       ns = $i
      if ($(i + 1) == "allocs/op")   allocs = $i
      if ($(i + 1) == "p99-tick-ns") p99 = $i
      if ($(i + 1) == "isr")         isr = $i
    }
    printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"cpus\": %s, \"p99_tick_ns\": %s, \"isr\": %s}", sep, name, ns, allocs, cpus, p99, isr
    sep = ",\n"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
