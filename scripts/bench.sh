#!/usr/bin/env bash
# bench.sh — run the tick + network benchmarks and record the perf
# trajectory into a JSON file (default BENCH_3.json): one entry per
# benchmark with name, ns/op and allocs/op.
#
# Usage:
#   scripts/bench.sh [out.json]
#   BENCHTIME=1x scripts/bench.sh     # CI smoke: one iteration each
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_3.json}"
benchtime="${BENCHTIME:-1s}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkTick$|BenchmarkSendReal$|BenchmarkSerializeChunk$' \
  -benchmem -benchtime "$benchtime" \
  ./internal/mlg/server | tee "$raw"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
      if ($(i + 1) == "ns/op")     ns = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
    printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", sep, name, ns, allocs
    sep = ",\n"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
