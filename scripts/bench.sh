#!/usr/bin/env bash
# bench.sh — run the tick + network benchmarks and record the perf
# trajectory into a JSON file (default BENCH_4.json): one entry per
# benchmark with name, ns/op and allocs/op. The set includes the
# BenchmarkTickParallel SimWorkers sweep (workers 1/2/4 over the scale>=2
# construct workloads), so the serial-vs-parallel tick trajectory is
# recorded next to the per-workload serial baselines; the sweep only shows
# core-scaling on hosts with >= 2 CPUs.
#
# Usage:
#   scripts/bench.sh [out.json]
#   BENCHTIME=1x scripts/bench.sh     # CI smoke: one iteration each
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_4.json}"
benchtime="${BENCHTIME:-1s}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkTick$|BenchmarkTickParallel$|BenchmarkSendReal$|BenchmarkSerializeChunk$' \
  -benchmem -benchtime "$benchtime" \
  ./internal/mlg/server | tee "$raw"

awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = "null"; allocs = "null"
    for (i = 2; i <= NF; i++) {
      if ($(i + 1) == "ns/op")     ns = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
    printf "%s  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"cpus\": %s}", sep, name, ns, allocs, ncpu
    sep = ",\n"
  }
  BEGIN { print "[" }
  END   { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
