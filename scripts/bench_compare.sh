#!/usr/bin/env bash
# bench_compare.sh — the CI perf-regression gate over the recorded benchmark
# trajectory.
#
#   scripts/bench_compare.sh fresh.json [baseline.json ...]
#
# Baselines default to BENCH_4.json BENCH_5.json BENCH_6.json BENCH_8.json
# BENCH_9.json BENCH_10.json; when several baselines pin the same benchmark,
# the later file wins (BENCH_10 supersedes BENCH_9 supersedes BENCH_8
# supersedes BENCH_6 supersedes BENCH_5 supersedes BENCH_4). Entries are keyed on (name, cpus) — cpus
# defaults to 1 for baselines recorded before the multicore sweep existed —
# so a cpus:1 measurement is only ever compared against a cpus:1 baseline,
# never against a sweep entry of the same benchmark. The pinned set is
# exactly the merged baseline's keys:
#
#   - a pinned cpus:1 benchmark missing from the fresh trajectory fails the
#     gate (the set may only shrink by editing the committed baseline in the
#     same change). Pinned cpus>1 entries are skipped with a warning when
#     absent: bench.sh only sweeps the multicore points the host can run, so
#     a 1-core CI runner legitimately produces no cpus:2/4 measurements;
#   - allocs/op is machine-independent, so it gates near-absolutely: fresh
#     above base*1.10 + 32 fails (the headroom covers scheduler-dependent
#     allocation jitter in the workers>=2 sweeps);
#   - ns/op depends on the host, so the gate is relative: per-benchmark
#     fresh/base ratios are calibrated by their median — a uniformly slower
#     CI runner shifts every ratio equally and passes — and any benchmark
#     more than 25% above the calibrated expectation fails. Three classes
#     are exempt from the time gate (alloc-gated only): benchmarks under
#     50 ms/op, where a single -benchtime=1x sample swings with scheduler
#     noise alone; the workers>=2 sweep entries; and every cpus>1 entry.
#     The latter two shift NON-uniformly with the runner's core count
#     relative to a baseline recorded on a different host (a 4-vCPU runner
#     speeds them up 2-4x against a 1-CPU baseline, which would drag the
#     calibration median off the uniform serial shift). The time-gated set
#     is therefore the long serial 60-tick window benches at cpus:1 — the
#     per-workload hot-path cost this gate exists to protect;
#   - Swarm-named benchmarks (BenchmarkSwarmTail) are exempt from BOTH
#     gates, and their absence from a fresh trajectory only warns — at any
#     cpus value, mirroring the cpus>1 downgrade — because hosts that skip
#     the swarm bench entirely (no loopback budget, constrained runners)
#     legitimately produce no Swarm entry: each iteration is a full real-TCP swarm run
#     whose ns/op is a fixed wall budget and whose allocs scale with live
#     goroutine/connection scheduling, not with the hot path. Their recorded
#     p99_tick_ns / isr fields are the trajectory of interest, tracked in
#     the committed BENCH_9.json rather than gated.
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="${1:?usage: scripts/bench_compare.sh fresh.json [baseline.json ...]}"
shift || true
baselines=("$@")
if [ "${#baselines[@]}" -eq 0 ]; then
  baselines=(BENCH_4.json BENCH_5.json BENCH_6.json BENCH_8.json BENCH_9.json BENCH_10.json)
fi

out=$(jq -s -r '
  def key: "\(.name)@\(.cpus // 1)";
  (.[0] | map({key: key, value: .}) | from_entries) as $fresh
  | (.[1:] | add | group_by(key) | map(.[-1])) as $base
  | ($base | map(. + {f: $fresh[key]})) as $rows
  | ($rows | map(select(.f == null and (.cpus // 1) == 1 and (.name | test("Swarm") | not))
      | "FAIL missing: pinned benchmark \(key) absent from fresh trajectory")) as $missing
  | ($rows | map(select(.f == null and (.cpus // 1) > 1 and (.name | test("Swarm") | not))
      | "WARN missing: pinned benchmark \(key) absent from fresh trajectory (multicore point not run on this host; skipped)")) as $missing_mc
  | ($rows | map(select(.f == null and (.name | test("Swarm")))
      | "WARN missing: Swarm benchmark \(key) absent from fresh trajectory (swarm bench skipped on this host; skipped)")) as $missing_swarm
  | ($rows | map(select(.f != null and .allocs_per_op != null and .f.allocs_per_op != null
                        and (.name | test("Swarm") | not))
      | select(.f.allocs_per_op > .allocs_per_op * 1.10 + 32)
      | "FAIL allocs: \(key) \(.allocs_per_op) -> \(.f.allocs_per_op) allocs/op")) as $alloc_fails
  | ($rows | map(select(.f != null and .ns_per_op != null and .f.ns_per_op != null
                        and .ns_per_op >= 50000000
                        and ((.cpus // 1) == 1)
                        and (.name | test("workers[2-9]") | not)
                        and (.name | test("Swarm") | not))
      | {name: key, r: (.f.ns_per_op / .ns_per_op)})) as $timed
  | (if ($timed | length) == 0 then 1
     else ($timed | map(.r) | sort | .[(length / 2 | floor)]) end) as $cal
  | ($timed | map(select(.r > $cal * 1.25)
      | "FAIL ns/op: \(.name) ratio \((.r * 100 | round) / 100) vs calibrated median \((($cal) * 100 | round) / 100) (> +25%)")) as $time_fails
  | ($missing + $alloc_fails + $time_fails) as $fails
  | (["perf gate: \($rows | length) pinned benchmarks, \($timed | length) time-gated, median speed ratio \((($cal) * 1000 | round) / 1000)"]
     + $missing_mc
     + $missing_swarm
     + $fails
     + [if ($fails | length) == 0 then "perf gate: PASS"
        else "perf gate: \($fails | length) regression(s)" end])
  | .[]
' "$fresh" "${baselines[@]}")

echo "$out"
if grep -q '^FAIL' <<<"$out"; then
  exit 1
fi
